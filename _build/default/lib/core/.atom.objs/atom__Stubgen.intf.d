lib/core/stubgen.mli: Alpha Om
