lib/core/instrument.mli: Api Objfile
