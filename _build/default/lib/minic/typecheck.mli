(** Type checking and lowering to {!Tast}.

    Two passes: the first registers struct layouts, global variables and
    every function signature (so mutual recursion needs no forward
    prototypes within a file); the second checks bodies, inserts implicit
    [long]/[double] conversions, scales pointer arithmetic and resolves
    struct member offsets. *)

exception Error of int * string

val program : Ast.program -> Tast.program
