(** Code generation from {!Tast} to assembly statements.

    Conventions (the OSF/1 calling standard, with one documented
    simplification):

    - arguments go in [$16]..[$21], then the stack; {e doubles travel as
      bit patterns in the integer argument registers}, which makes varargs
      layout uniform (DESIGN.md, "Mini-C ABI");
    - results come back in [$0] ([$f0] for doubles);
    - every function builds a frame addressed through [$fp] and spills its
      first six arguments into home slots adjacent to the caller-pushed
      stack arguments, so [&arg] and varargs walk one contiguous array;
    - expression evaluation uses the caller-save temporaries
      [$1]-[$8]/[$22]-[$25] as a register stack; [/] and [%] call the
      runtime helpers [__divq]/[__remq]. *)

exception Error of string

val program : Tast.program -> Asmlib.Src.stmt list

val to_asm_text : Tast.program -> string
(** The generated statements rendered as assembly source. *)
