(** One-call compiler pipeline: Mini-C source to a relocatable object
    module (or assembly text, for inspection). *)

exception Error of string
(** Any compilation failure, with a location prefix where available. *)

val compile : name:string -> string -> Objfile.Unit_file.t
(** Parse, typecheck, generate code and assemble. *)

val compile_to_asm : string -> string
(** Stop after code generation; returns assembly source. *)
