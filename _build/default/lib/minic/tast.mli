(** The typed, lowered form of Mini-C the code generator consumes.

    Typechecking lowers all memory access to explicit address arithmetic:
    l-values become address expressions, loads and stores are explicit and
    carry the scalar width, pointer arithmetic is pre-scaled, struct
    members are constant offsets.  Every remaining value is either a
    64-bit integer class value ([Lint]: longs, chars, pointers) or a
    double ([Ldouble]). *)

type lty = Lint | Ldouble

type scalar =
  | S8  (** unsigned byte ([char]) *)
  | S64  (** long / pointer *)
  | SF64  (** double *)

type texpr =
  | Cint of int64
  | Cfloat of float
  | Cstr of int  (** index into the program's string table *)
  | Glob_addr of string  (** address of a global datum or function *)
  | Loc_addr of int  (** address of a stack slot, by slot id *)
  | Load of scalar * texpr
  | Store of scalar * texpr * texpr  (** address, value; yields the value *)
  | Un of Ast.unop * lty * texpr
  | Bin of Ast.binop * lty * texpr * texpr
      (** [lty] classifies the {e operands}; comparisons yield [Lint] *)
  | Logand of texpr * texpr
  | Logor of texpr * texpr
  | Cond of lty * texpr * texpr * texpr
  | Call of call
  | Cast_i2d of texpr
  | Cast_d2i of texpr
  | Incdec of { sc : scalar; addr : texpr; delta : int64; post : bool }
      (** [++]/[--] on an integer-class l-value; [delta] is pre-scaled *)
  | Assignop of { sc : scalar; cls : lty; op : Ast.binop; addr : texpr; value : texpr }
      (** [x op= e]: the address is evaluated once; yields the new value *)

and call = {
  c_fn : fn_target;
  c_args : (lty * texpr) list;
  c_ret : lty option;  (** [None] for void *)
}

and fn_target = Direct of string | Indirect of texpr

type tstmt =
  | Texpr of texpr
  | Tif of texpr * tstmt list * tstmt list
  | Tloop of loop
  | Treturn of (lty * texpr) option
  | Tbreak
  | Tcontinue

and loop = {
  l_cond : texpr option;  (** tested before each iteration; [None] = true *)
  l_post_test : bool;  (** do-while: run body once before first test *)
  l_body : tstmt list;
  l_step : texpr list;  (** run after body and on [continue] *)
}

type slot = { sl_id : int; sl_name : string; sl_size : int }

type tfunc = {
  f_name : string;
  f_ret : lty option;
  f_params : slot list;  (** in declaration order; each 8 bytes *)
  f_varargs : bool;
  f_slots : slot list;  (** every stack slot, parameters included *)
  f_body : tstmt list;
}

type ginit =
  | Gint of int64
  | Gfloat of float
  | Gaddr of string * int  (** symbol + byte offset *)
  | Gstr of int  (** pointer to interned string *)

type tglobal = {
  g_name : string;
  g_size : int;
  g_elem : int;  (** bytes per initialiser element: 1 for char arrays, else 8 *)
  g_init : ginit list option;  (** [None]: zero-initialised (.bss) *)
}

type program = {
  p_funcs : tfunc list;
  p_globals : tglobal list;
  p_strings : string array;
  p_externs : string list;  (** referenced but defined elsewhere *)
}
