(** Tokeniser for Mini-C.  Supports [//] and [/* */] comments, decimal /
    hex / char / string / floating literals with the usual escapes. *)

type token =
  | INT of int64
  | FLOAT of float
  | STRING of string
  | CHAR of char
  | IDENT of string
  | KW of string  (** one of the reserved words *)
  | PUNCT of string  (** operators and punctuation, longest-match *)
  | EOF

type t = { tok : token; line : int }

exception Error of int * string

val tokens : string -> t list
val token_to_string : token -> string
