exception Error of string

let wrap name fn =
  try fn () with
  | Lexer.Error (ln, m) | Parser.Error (ln, m) | Typecheck.Error (ln, m) ->
      raise (Error (Printf.sprintf "%s:%d: %s" name ln m))
  | Codegen.Error m | Failure m -> raise (Error (Printf.sprintf "%s: %s" name m))
  | Asmlib.Assemble.Error (ln, m) ->
      raise (Error (Printf.sprintf "%s (generated asm line %d): %s" name ln m))

let compile ~name source =
  wrap name (fun () ->
      let ast = Parser.program source in
      let tast = Typecheck.program ast in
      let stmts = Codegen.program tast in
      Asmlib.Assemble.unit_of_stmts ~name stmts)

let compile_to_asm source =
  wrap "<source>" (fun () ->
      Codegen.to_asm_text (Typecheck.program (Parser.program source)))
