lib/minic/codegen.mli: Asmlib Tast
