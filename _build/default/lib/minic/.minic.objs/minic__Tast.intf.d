lib/minic/tast.mli: Ast
