lib/minic/codegen.ml: Alpha Array Asmlib Ast Buffer Int64 List Objfile Printf Tast
