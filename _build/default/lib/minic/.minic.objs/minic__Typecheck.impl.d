lib/minic/typecheck.ml: Array Ast Char Hashtbl Int64 List Option Printf Tast
