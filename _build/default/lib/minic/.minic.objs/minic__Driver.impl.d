lib/minic/driver.ml: Asmlib Codegen Lexer Parser Printf Typecheck
