lib/minic/lexer.mli:
