lib/minic/parser.ml: Array Ast Char Int64 Lexer List Option Printf
