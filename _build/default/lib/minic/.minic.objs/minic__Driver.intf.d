lib/minic/driver.mli: Objfile
