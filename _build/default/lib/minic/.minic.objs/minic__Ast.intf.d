lib/minic/ast.mli:
