

type lty = Lint | Ldouble

type scalar =
  | S8  
  | S64  
  | SF64  

type texpr =
  | Cint of int64
  | Cfloat of float
  | Cstr of int  
  | Glob_addr of string  
  | Loc_addr of int  
  | Load of scalar * texpr
  | Store of scalar * texpr * texpr  
  | Un of Ast.unop * lty * texpr
  | Bin of Ast.binop * lty * texpr * texpr
      
  | Logand of texpr * texpr
  | Logor of texpr * texpr
  | Cond of lty * texpr * texpr * texpr
  | Call of call
  | Cast_i2d of texpr
  | Cast_d2i of texpr
  | Incdec of { sc : scalar; addr : texpr; delta : int64; post : bool }
      
  | Assignop of { sc : scalar; cls : lty; op : Ast.binop; addr : texpr; value : texpr }
      

and call = {
  c_fn : fn_target;
  c_args : (lty * texpr) list;
  c_ret : lty option;  
}

and fn_target = Direct of string | Indirect of texpr

type tstmt =
  | Texpr of texpr
  | Tif of texpr * tstmt list * tstmt list
  | Tloop of loop
  | Treturn of (lty * texpr) option
  | Tbreak
  | Tcontinue

and loop = {
  l_cond : texpr option;  
  l_post_test : bool;  
  l_body : tstmt list;
  l_step : texpr list;  
}

type slot = { sl_id : int; sl_name : string; sl_size : int }

type tfunc = {
  f_name : string;
  f_ret : lty option;
  f_params : slot list;  
  f_varargs : bool;
  f_slots : slot list;  
  f_body : tstmt list;
}

type ginit =
  | Gint of int64
  | Gfloat of float
  | Gaddr of string * int  
  | Gstr of int  

type tglobal = {
  g_name : string;
  g_size : int;
  g_elem : int;  
  g_init : ginit list option;  
}

type program = {
  p_funcs : tfunc list;
  p_globals : tglobal list;
  p_strings : string array;
  p_externs : string list;  
}
