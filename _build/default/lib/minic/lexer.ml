type token =
  | INT of int64
  | FLOAT of float
  | STRING of string
  | CHAR of char
  | IDENT of string
  | KW of string
  | PUNCT of string
  | EOF

type t = { tok : token; line : int }

exception Error of int * string

let err ln fmt = Printf.ksprintf (fun m -> raise (Error (ln, m))) fmt

let keywords =
  [ "long"; "int"; "char"; "double"; "void"; "struct"; "extern"; "static";
    "return"; "if"; "else"; "while"; "for"; "do"; "break"; "continue"; "sizeof" ]

(* multi-character punctuation, longest first *)
let puncts3 = [ "<<="; ">>="; "..." ]

let puncts2 =
  [ "=="; "!="; "<="; ">="; "&&"; "||"; "<<"; ">>"; "+="; "-="; "*="; "/=";
    "%="; "&="; "|="; "^="; "++"; "--"; "->" ]

let is_digit c = c >= '0' && c <= '9'
let is_hex c = is_digit c || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident c = is_ident_start c || is_digit c

let escape ln = function
  | 'n' -> '\n'
  | 't' -> '\t'
  | 'r' -> '\r'
  | '0' -> '\000'
  | '\\' -> '\\'
  | '\'' -> '\''
  | '"' -> '"'
  | c -> err ln "bad escape '\\%c'" c

let tokens src =
  let n = String.length src in
  let line = ref 1 in
  let out = ref [] in
  let push tok = out := { tok; line = !line } :: !out in
  let rec go i =
    if i >= n then ()
    else
      match src.[i] with
      | '\n' ->
          incr line;
          go (i + 1)
      | ' ' | '\t' | '\r' -> go (i + 1)
      | '/' when i + 1 < n && src.[i + 1] = '/' ->
          let rec skip j = if j >= n || src.[j] = '\n' then j else skip (j + 1) in
          go (skip (i + 2))
      | '/' when i + 1 < n && src.[i + 1] = '*' ->
          let rec skip j =
            if j + 1 >= n then err !line "unterminated comment"
            else if src.[j] = '*' && src.[j + 1] = '/' then j + 2
            else begin
              if src.[j] = '\n' then incr line;
              skip (j + 1)
            end
          in
          go (skip (i + 2))
      | '"' ->
          let b = Buffer.create 16 in
          let rec scan j =
            if j >= n then err !line "unterminated string"
            else
              match src.[j] with
              | '"' -> j + 1
              | '\\' when j + 1 < n ->
                  Buffer.add_char b (escape !line src.[j + 1]);
                  scan (j + 2)
              | c ->
                  if c = '\n' then incr line;
                  Buffer.add_char b c;
                  scan (j + 1)
          in
          let j = scan (i + 1) in
          push (STRING (Buffer.contents b));
          go j
      | '\'' ->
          let c, j =
            if i + 1 < n && src.[i + 1] = '\\' then begin
              if i + 2 >= n then err !line "unterminated char";
              (escape !line src.[i + 2], i + 3)
            end
            else if i + 1 < n then (src.[i + 1], i + 2)
            else err !line "unterminated char"
          in
          if j >= n || src.[j] <> '\'' then err !line "unterminated char literal";
          push (CHAR c);
          go (j + 1)
      | c when is_digit c ->
          let hex = c = '0' && i + 1 < n && (src.[i + 1] = 'x' || src.[i + 1] = 'X') in
          let start = i in
          let rec scan j seen_dot =
            if j >= n then (j, seen_dot)
            else
              match src.[j] with
              | c when is_digit c -> scan (j + 1) seen_dot
              | c when hex && is_hex c -> scan (j + 1) seen_dot
              | 'x' | 'X' when hex && j = start + 1 -> scan (j + 1) seen_dot
              | '.' when not hex && not seen_dot -> scan (j + 1) true
              | ('e' | 'E') when (not hex) && j + 1 < n
                                 && (is_digit src.[j + 1]
                                    || ((src.[j + 1] = '+' || src.[j + 1] = '-')
                                       && j + 2 < n && is_digit src.[j + 2])) ->
                  let j = if src.[j + 1] = '+' || src.[j + 1] = '-' then j + 2 else j + 1 in
                  scan (j + 1) true
              | _ -> (j, seen_dot)
          in
          let j, is_float = scan i false in
          let text = String.sub src i (j - i) in
          if is_float then
            match float_of_string_opt text with
            | Some f -> push (FLOAT f); go j
            | None -> err !line "bad float literal %S" text
          else begin
            (match Int64.of_string_opt text with
            | Some v -> push (INT v)
            | None -> err !line "bad integer literal %S" text);
            go j
          end
      | c when is_ident_start c ->
          let rec scan j = if j < n && is_ident src.[j] then scan (j + 1) else j in
          let j = scan i in
          let word = String.sub src i (j - i) in
          if List.mem word keywords then push (KW word) else push (IDENT word);
          go j
      | _ ->
          let try_punct lst len =
            if i + len <= n && List.mem (String.sub src i len) lst then
              Some (String.sub src i len)
            else None
          in
          (match try_punct puncts3 3 with
          | Some p ->
              push (PUNCT p);
              go (i + 3)
          | None -> (
              match try_punct puncts2 2 with
              | Some p ->
                  push (PUNCT p);
                  go (i + 2)
              | None ->
                  let c = src.[i] in
                  if String.contains "+-*/%&|^~!<>=(){}[];,.?:" c then begin
                    push (PUNCT (String.make 1 c));
                    go (i + 1)
                  end
                  else err !line "unexpected character %C" c))
  in
  go 0;
  push EOF;
  List.rev !out

let token_to_string = function
  | INT v -> Int64.to_string v
  | FLOAT f -> string_of_float f
  | STRING s -> Printf.sprintf "%S" s
  | CHAR c -> Printf.sprintf "%C" c
  | IDENT s -> s
  | KW s -> s
  | PUNCT s -> s
  | EOF -> "<eof>"
