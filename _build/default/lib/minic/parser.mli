(** Recursive-descent parser for Mini-C.

    There are no typedefs, so the grammar is unambiguous: a parenthesis
    followed by a type keyword is a cast, a statement starting with a type
    keyword is a declaration.  Declarations accept comma-separated
    declarator lists and the restricted function-pointer declarator
    [ret ( \* name)(argtypes)]. *)

exception Error of int * string

val program : string -> Ast.program
