lib/machine/sim.mli: Alpha Mem Objfile Vfs
