lib/machine/vfs.mli:
