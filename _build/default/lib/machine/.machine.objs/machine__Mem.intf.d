lib/machine/mem.mli:
