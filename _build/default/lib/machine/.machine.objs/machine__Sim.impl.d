lib/machine/sim.ml: Alpha Array Bytes Code Cost Insn Int64 List Mem Objfile Printf Reg Regset Vfs
