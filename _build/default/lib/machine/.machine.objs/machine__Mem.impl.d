lib/machine/mem.ml: Buffer Bytes Char Hashtbl Int64
