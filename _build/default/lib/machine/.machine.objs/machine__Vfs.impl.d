lib/machine/vfs.ml: Array Buffer Bytes Hashtbl List String
