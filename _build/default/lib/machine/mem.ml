let page_bits = 12
let page_size = 1 lsl page_bits
let page_mask = page_size - 1

type t = { pages : (int, bytes) Hashtbl.t }

let create () = { pages = Hashtbl.create 256 }

let page m a =
  let idx = a lsr page_bits in
  match Hashtbl.find_opt m.pages idx with
  | Some p -> p
  | None ->
      let p = Bytes.make page_size '\000' in
      Hashtbl.replace m.pages idx p;
      p

let read_u8 m a = Char.code (Bytes.unsafe_get (page m a) (a land page_mask))

let write_u8 m a v =
  Bytes.unsafe_set (page m a) (a land page_mask) (Char.unsafe_chr (v land 0xFF))

(* Fast paths when the access stays within one page. *)
let read_u16 m a =
  let off = a land page_mask in
  if off + 2 <= page_size then
    let p = page m a in
    Char.code (Bytes.unsafe_get p off) lor (Char.code (Bytes.unsafe_get p (off + 1)) lsl 8)
  else read_u8 m a lor (read_u8 m (a + 1) lsl 8)

let read_u32 m a =
  let off = a land page_mask in
  if off + 4 <= page_size then begin
    let p = page m a in
    Char.code (Bytes.unsafe_get p off)
    lor (Char.code (Bytes.unsafe_get p (off + 1)) lsl 8)
    lor (Char.code (Bytes.unsafe_get p (off + 2)) lsl 16)
    lor (Char.code (Bytes.unsafe_get p (off + 3)) lsl 24)
  end
  else read_u16 m a lor (read_u16 m (a + 2) lsl 16)

let read_u64 m a =
  let off = a land page_mask in
  if off + 8 <= page_size then
    let p = page m a in
    Int64.logor
      (Int64.of_int
         (Char.code (Bytes.unsafe_get p off)
         lor (Char.code (Bytes.unsafe_get p (off + 1)) lsl 8)
         lor (Char.code (Bytes.unsafe_get p (off + 2)) lsl 16)
         lor (Char.code (Bytes.unsafe_get p (off + 3)) lsl 24)))
      (Int64.shift_left
         (Int64.of_int
            (Char.code (Bytes.unsafe_get p (off + 4))
            lor (Char.code (Bytes.unsafe_get p (off + 5)) lsl 8)
            lor (Char.code (Bytes.unsafe_get p (off + 6)) lsl 16)
            lor (Char.code (Bytes.unsafe_get p (off + 7)) lsl 24)))
         32)
  else
    Int64.logor
      (Int64.of_int (read_u32 m a))
      (Int64.shift_left (Int64.of_int (read_u32 m (a + 4))) 32)

let write_u16 m a v =
  write_u8 m a v;
  write_u8 m (a + 1) (v lsr 8)

let write_u32 m a v =
  let off = a land page_mask in
  if off + 4 <= page_size then begin
    let p = page m a in
    Bytes.unsafe_set p off (Char.unsafe_chr (v land 0xFF));
    Bytes.unsafe_set p (off + 1) (Char.unsafe_chr ((v lsr 8) land 0xFF));
    Bytes.unsafe_set p (off + 2) (Char.unsafe_chr ((v lsr 16) land 0xFF));
    Bytes.unsafe_set p (off + 3) (Char.unsafe_chr ((v lsr 24) land 0xFF))
  end
  else begin
    write_u16 m a v;
    write_u16 m (a + 2) (v lsr 16)
  end

let write_u64 m a v =
  let lo = Int64.to_int (Int64.logand v 0xFFFFFFFFL) in
  let hi = Int64.to_int (Int64.shift_right_logical v 32) in
  write_u32 m a lo;
  write_u32 m (a + 4) hi

let write_bytes m a b =
  Bytes.iteri (fun i c -> write_u8 m (a + i) (Char.code c)) b

let read_block m a n = Bytes.init n (fun i -> Char.chr (read_u8 m (a + i)))

let read_cstring m a =
  let buf = Buffer.create 32 in
  let rec go i =
    if i >= 1 lsl 20 then Buffer.contents buf
    else
      let c = read_u8 m (a + i) in
      if c = 0 then Buffer.contents buf
      else begin
        Buffer.add_char buf (Char.chr c);
        go (i + 1)
      end
  in
  go 0

let pages_touched m = Hashtbl.length m.pages
