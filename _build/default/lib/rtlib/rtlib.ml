let header = Sources.header_c

let memo fn =
  let cell = ref None in
  fun () ->
    match !cell with
    | Some v -> v
    | None ->
        let v = fn () in
        cell := Some v;
        v

let crt0 = memo (fun () -> Asmlib.Assemble.assemble ~name:"crt0.o" Sources.crt0_s)

let libc =
  memo (fun () ->
      let div = Asmlib.Assemble.assemble ~name:"div.o" Sources.div_s in
      let sys = Asmlib.Assemble.assemble ~name:"sys.o" Sources.sys_s in
      let libc = Minic.Driver.compile ~name:"libc.o" Sources.libc_c in
      Objfile.Archive.create "libc.a" [ libc; div; sys ])

let compile_user ~name source =
  Minic.Driver.compile ~name (header ^ "\n" ^ source)

let link_program units =
  Linker.Link.link
    (Linker.Link.Unit (crt0 ())
     :: (List.map (fun u -> Linker.Link.Unit u) units @ [ Linker.Link.Lib (libc ()) ]))

let compile_and_link ~name source = link_program [ compile_user ~name source ]
