lib/rtlib/rtlib.ml: Asmlib Linker List Minic Objfile Sources
