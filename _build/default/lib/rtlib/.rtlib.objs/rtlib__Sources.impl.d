lib/rtlib/sources.ml:
