lib/rtlib/rtlib.mli: Objfile
