(* Runtime-library source text, embedded so the toolchain is self-contained.
   [crt0_s], [div_s] and [sys_s] are assembly; [libc_c] is Mini-C. *)

let crt0_s =
  {|
# C runtime startup: initialise the library, run main, exit with its result.
        .text
        .globl __start
        .ent __start
__start:
        bsr     $26, __libc_init
        clr     $16
        clr     $17
        bsr     $26, main
        mov     $0, $16
        bsr     $26, exit
        # exit does not return; trap if it somehow does
        call_pal 0
        .end __start
|}

let div_s =
  {|
# 64-bit division helpers (the Alpha has no integer divide instruction;
# the compiler calls these for / and %).  Args in $16/$17, result in $0;
# __divqu additionally leaves the remainder in $3.  Division by zero
# yields 0 (and remainder 0).
        .text
        .globl __divqu
        .ent __divqu
__divqu:
        clr     $0
        clr     $3
        beq     $17, .Ldivqu_done
        ldiq    $2, 64
.Ldivqu_loop:
        sll     $3, 1, $3
        srl     $16, 63, $1
        bis     $3, $1, $3
        sll     $16, 1, $16
        sll     $0, 1, $0
        cmpule  $17, $3, $1
        beq     $1, .Ldivqu_skip
        subq    $3, $17, $3
        bis     $0, 1, $0
.Ldivqu_skip:
        subq    $2, 1, $2
        bne     $2, .Ldivqu_loop
.Ldivqu_done:
        ret
        .end __divqu

        .globl __remqu
        .ent __remqu
__remqu:
        lda     $30, -16($30)
        stq     $26, 0($30)
        bsr     $26, __divqu
        mov     $3, $0
        ldq     $26, 0($30)
        lda     $30, 16($30)
        ret
        .end __remqu

        .globl __divq
        .ent __divq
__divq:
        lda     $30, -32($30)
        stq     $26, 0($30)
        xor     $16, $17, $1
        srl     $1, 63, $1
        stq     $1, 8($30)          # 1 if result must be negated
        negq    $16, $1
        cmovlt  $16, $1, $16
        negq    $17, $1
        cmovlt  $17, $1, $17
        bsr     $26, __divqu
        ldq     $1, 8($30)
        negq    $0, $2
        cmovne  $1, $2, $0
        ldq     $26, 0($30)
        lda     $30, 32($30)
        ret
        .end __divq

        .globl __remq
        .ent __remq
__remq:
        lda     $30, -32($30)
        stq     $26, 0($30)
        srl     $16, 63, $1
        stq     $1, 8($30)          # remainder takes the dividend's sign
        negq    $16, $1
        cmovlt  $16, $1, $16
        negq    $17, $1
        cmovlt  $17, $1, $17
        bsr     $26, __divqu
        mov     $3, $0
        ldq     $1, 8($30)
        negq    $0, $2
        cmovne  $1, $2, $0
        ldq     $26, 0($30)
        lda     $30, 32($30)
        ret
        .end __remq
|}

let sys_s =
  {|
# Raw system-call stubs.  Arguments are already in $16..$18 per the
# calling standard; the callsys PAL call takes the number in $0.
        .text
        .globl __sys_exit
        .ent __sys_exit
__sys_exit:
        ldiq    $0, 1
        call_pal 0x83
        ret
        .end __sys_exit

        .globl __sys_read
        .ent __sys_read
__sys_read:
        ldiq    $0, 3
        call_pal 0x83
        ret
        .end __sys_read

        .globl __sys_write
        .ent __sys_write
__sys_write:
        ldiq    $0, 4
        call_pal 0x83
        ret
        .end __sys_write

        .globl __sys_close
        .ent __sys_close
__sys_close:
        ldiq    $0, 6
        call_pal 0x83
        ret
        .end __sys_close

        .globl __sys_brk
        .ent __sys_brk
__sys_brk:
        ldiq    $0, 17
        call_pal 0x83
        ret
        .end __sys_brk

        .globl __sys_open
        .ent __sys_open
__sys_open:
        ldiq    $0, 45
        call_pal 0x83
        ret
        .end __sys_open
|}

(* Prototypes for everything the library exports; prepended to user
   programs by {!Rtlib.compile_user} (Mini-C has no preprocessor). *)
let header_c =
  {|
extern void exit(long code);
extern void *sbrk(long incr);
extern void *malloc(long n);
extern void free(void *p);
extern void *calloc(long n, long size);
extern void *memset(void *p, long c, long n);
extern void *memcpy(void *dst, void *src, long n);
extern long memcmp(void *a, void *b, long n);
extern long strlen(char *s);
extern char *strcpy(char *d, char *s);
extern long strcmp(char *a, char *b);
extern long strncmp(char *a, char *b, long n);
extern char *strcat(char *d, char *s);
extern char *strchr(char *s, long c);
extern long atoi(char *s);
extern void putchar(long c);
extern void puts(char *s);
extern long printf(char *fmt, ...);
extern void *fopen(char *path, char *mode);
extern long fprintf(void *f, char *fmt, ...);
extern void fflush(void *f);
extern void fclose(void *f);
extern long open(char *path, long flags);
extern void close(long fd);
extern long read(long fd, void *buf, long n);
extern long write(long fd, void *buf, long n);
extern long rand(void);
extern void srand(long seed);
extern double sqrt(double x);
extern double fabs(double x);
extern long labs(long x);
extern long __divqu(long a, long b);
extern long __remqu(long a, long b);
|}

let libc_c =
  {|
extern long __sys_exit(long code);
extern long __sys_read(long fd, void *buf, long n);
extern long __sys_write(long fd, void *buf, long n);
extern long __sys_close(long fd);
extern long __sys_brk(long want);
extern long __sys_open(char *path, long flags);
extern long __divqu(long a, long b);
extern long __remqu(long a, long b);

/* defined by the linker: first address past .bss */
extern long _end;

/* ---- program break: the heap ------------------------------------- */

/* ATOM links or separates the two copies of this variable (application
   and analysis) depending on the heap mode; see the paper, section 4. */
long __curbrk;

void *sbrk(long incr) {
    long old, want, got;
    if (__curbrk == 0)
        __curbrk = (long) &_end;
    old = __curbrk;
    want = old + incr;
    got = __sys_brk(want);
    if (got != want)
        return (void *) -1;
    __curbrk = want;
    return (void *) old;
}

/* ---- malloc: first-fit free list ---------------------------------- */

/* block header: [0] = size of the user area, [1] = next free block */
long *__mfree;

void *malloc(long n) {
    long *p, *prev, *hdr;
    long total;
    n = (n + 15) & -16;
    if (n < 16) n = 16;
    prev = 0;
    p = __mfree;
    while (p) {
        if (p[0] >= n) {
            if (p[0] >= n + 32) {
                /* split: tail becomes a new free block */
                hdr = (long *) ((char *) p + 16 + n);
                hdr[0] = p[0] - n - 16;
                hdr[1] = p[1];
                p[0] = n;
                if (prev) prev[1] = (long) hdr; else __mfree = (long *) hdr;
            } else {
                if (prev) prev[1] = p[1]; else __mfree = (long *) p[1];
            }
            return (void *) (p + 2);
        }
        prev = p;
        p = (long *) p[1];
    }
    total = n + 16;
    if (total < 4096) {
        /* carve small blocks out of a page-sized arena */
        hdr = (long *) sbrk(4096);
        if ((long) hdr == -1) return 0;
        hdr[0] = n;
        p = (long *) ((char *) hdr + 16 + n);
        p[0] = 4096 - n - 32;
        p[1] = (long) __mfree;
        __mfree = p;
        return (void *) (hdr + 2);
    }
    hdr = (long *) sbrk(total);
    if ((long) hdr == -1) return 0;
    hdr[0] = n;
    return (void *) (hdr + 2);
}

void free(void *q) {
    long *p;
    if (!q) return;
    p = (long *) q - 2;
    p[1] = (long) __mfree;
    __mfree = p;
}

void *calloc(long n, long size) {
    long total = n * size;
    void *p = malloc(total);
    if (p) memset(p, 0, total);
    return p;
}

/* ---- memory and strings ------------------------------------------- */

void *memset(void *p, long c, long n) {
    char *q = (char *) p;
    long i;
    for (i = 0; i < n; i++) q[i] = c;
    return p;
}

void *memcpy(void *dst, void *src, long n) {
    char *d = (char *) dst;
    char *s = (char *) src;
    long i;
    for (i = 0; i < n; i++) d[i] = s[i];
    return dst;
}

long memcmp(void *a, void *b, long n) {
    char *x = (char *) a;
    char *y = (char *) b;
    long i;
    for (i = 0; i < n; i++) {
        if (x[i] != y[i]) return x[i] - y[i];
    }
    return 0;
}

long strlen(char *s) {
    long n = 0;
    while (s[n]) n++;
    return n;
}

char *strcpy(char *d, char *s) {
    long i = 0;
    while (s[i]) { d[i] = s[i]; i++; }
    d[i] = 0;
    return d;
}

long strcmp(char *a, char *b) {
    long i = 0;
    while (a[i] && a[i] == b[i]) i++;
    return a[i] - b[i];
}

long strncmp(char *a, char *b, long n) {
    long i = 0;
    if (n == 0) return 0;
    while (i < n - 1 && a[i] && a[i] == b[i]) i++;
    return a[i] - b[i];
}

char *strcat(char *d, char *s) {
    strcpy(d + strlen(d), s);
    return d;
}

char *strchr(char *s, long c) {
    while (*s) {
        if (*s == c) return s;
        s++;
    }
    if (c == 0) return s;
    return 0;
}

long atoi(char *s) {
    long v = 0, neg = 0;
    while (*s == ' ' || *s == 9) s++;
    if (*s == '-') { neg = 1; s++; }
    while (*s >= '0' && *s <= '9') {
        v = v * 10 + (*s - '0');
        s++;
    }
    if (neg) return -v;
    return v;
}

long labs(long x) { if (x < 0) return -x; return x; }

/* ---- buffered stdio ------------------------------------------------ */

struct _File {
    long fd;
    long len;
    char buf[512];
};

struct _File __stdout_file;
struct _File __stderr_file;

void __libc_init(void) {
    __stdout_file.fd = 1;
    __stderr_file.fd = 2;
}

void fflush(void *fp) {
    struct _File *f = (struct _File *) fp;
    if (f->len > 0) {
        __sys_write(f->fd, f->buf, f->len);
        f->len = 0;
    }
}

void __fput(struct _File *f, long c) {
    if (f->len >= 512) fflush(f);
    f->buf[f->len] = c;
    f->len = f->len + 1;
}

void exit(long code) {
    fflush(&__stdout_file);
    fflush(&__stderr_file);
    __sys_exit(code);
}

long open(char *path, long flags) { return __sys_open(path, flags); }
void close(long fd) { __sys_close(fd); }
long read(long fd, void *buf, long n) { return __sys_read(fd, buf, n); }
long write(long fd, void *buf, long n) { return __sys_write(fd, buf, n); }

void *fopen(char *path, char *mode) {
    struct _File *f;
    long flags = 0;
    if (*mode == 'w') flags = 1;
    if (*mode == 'a') flags = 2;
    f = (struct _File *) malloc(sizeof(struct _File));
    if (!f) return 0;
    f->fd = __sys_open(path, flags);
    f->len = 0;
    if (f->fd < 0) {
        free(f);
        return 0;
    }
    return (void *) f;
}

void fclose(void *fp) {
    struct _File *f = (struct _File *) fp;
    fflush(f);
    __sys_close(f->fd);
    free(f);
}

void putchar(long c) { __fput(&__stdout_file, c); }

void puts(char *s) {
    while (*s) { putchar(*s); s++; }
    putchar(10);
}

/* ---- formatted output ---------------------------------------------- */

void __fput_str(struct _File *f, char *s) {
    while (*s) { __fput(f, *s); s++; }
}

/* print v in the given base (2..16), unsigned, padded to `width` with
   `pad` (' ' or '0') */
void __fput_num(struct _File *f, long v, long base, long width, long pad, long is_signed) {
    char tmp[70];
    long n = 0, neg = 0, digit;
    if (is_signed && v < 0) {
        neg = 1;
        v = -v;           /* note: LONG_MIN stays negative; acceptable here */
    }
    if (v == 0) {
        tmp[n] = '0';
        n = 1;
    }
    while (v != 0) {
        digit = __remqu(v, base);
        if (digit < 10) tmp[n] = '0' + digit;
        else tmp[n] = 'a' + digit - 10;
        n++;
        v = __divqu(v, base);
    }
    if (neg) { tmp[n] = '-'; n++; }
    while (n < width) {
        if (pad == '0' && neg) {
            /* keep the sign in front of zero padding */
            tmp[n - 1] = '0';
            tmp[n] = '-';
        } else {
            tmp[n] = pad;
        }
        n++;
    }
    while (n > 0) {
        n--;
        __fput(f, tmp[n]);
    }
}

void __fput_double(struct _File *f, double x) {
    long ip, frac;
    double fx;
    if (x < 0.0) {
        __fput(f, '-');
        x = -x;
    }
    ip = (long) x;
    fx = (x - (double) ip) * 1000000.0 + 0.5;
    frac = (long) fx;
    if (frac >= 1000000) {
        ip = ip + 1;
        frac = frac - 1000000;
    }
    __fput_num(f, ip, 10, 0, ' ', 0);
    __fput(f, '.');
    __fput_num(f, frac, 10, 6, '0', 0);
}

long __vformat(struct _File *f, char *fmt, long *ap) {
    long width, pad, bits;
    double *px;
    char *s;
    long count = 0;
    while (*fmt) {
        if (*fmt != '%') {
            __fput(f, *fmt);
            fmt++;
            count++;
            continue;
        }
        fmt++;
        if (*fmt == '%') {
            __fput(f, '%');
            fmt++;
            continue;
        }
        pad = ' ';
        width = 0;
        if (*fmt == '0') { pad = '0'; fmt++; }
        while (*fmt >= '0' && *fmt <= '9') {
            width = width * 10 + (*fmt - '0');
            fmt++;
        }
        if (*fmt == 'l') fmt++;   /* %ld == %d */
        if (*fmt == 'd') {
            __fput_num(f, *ap, 10, width, pad, 1);
            ap++;
        } else if (*fmt == 'u') {
            __fput_num(f, *ap, 10, width, pad, 0);
            ap++;
        } else if (*fmt == 'x') {
            __fput_num(f, *ap, 16, width, pad, 0);
            ap++;
        } else if (*fmt == 'c') {
            __fput(f, *ap);
            ap++;
        } else if (*fmt == 's') {
            s = (char *) *ap;
            __fput_str(f, s);
            ap++;
        } else if (*fmt == 'f' || *fmt == 'g') {
            bits = *ap;
            px = (double *) &bits;
            __fput_double(f, *px);
            ap++;
        } else {
            __fput(f, '%');
            __fput(f, *fmt);
        }
        fmt++;
    }
    return count;
}

long printf(char *fmt, ...) {
    long *ap = (long *) &fmt + 1;
    return __vformat(&__stdout_file, fmt, ap);
}

long fprintf(void *f, char *fmt, ...) {
    long *ap = (long *) &fmt + 1;
    return __vformat((struct _File *) f, fmt, ap);
}

/* ---- misc ----------------------------------------------------------- */

long __rand_state;

void srand(long seed) { __rand_state = seed; }

long rand(void) {
    __rand_state = __rand_state * 6364136223846793005 + 1442695040888963407;
    return (__rand_state >> 33) & 1073741823;
}

double fabs(double x) {
    if (x < 0.0) return -x;
    return x;
}

double sqrt(double x) {
    double g;
    long i;
    if (x <= 0.0) return 0.0;
    g = x;
    if (g > 1.0) g = x * 0.5 + 0.5;
    for (i = 0; i < 32; i++)
        g = 0.5 * (g + x / g);
    return g;
}
|}
