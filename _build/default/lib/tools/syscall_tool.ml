(* syscall: system call summary — hook every callsys instruction. *)

let instrument api =
  let open Atom.Api in
  add_call_proto api "SysBefore(REGV, long)";
  add_call_proto api "SysAfter(REGV, long)";
  add_call_proto api "SysReport()";
  List.iter
    (fun p ->
      List.iter
        (fun b ->
          List.iter
            (fun inst ->
              if is_inst_type inst Inst_syscall then begin
                add_call_inst api inst Before "SysBefore"
                  [ Regv 0; Inst_pc inst ];
                add_call_inst api inst After "SysAfter" [ Regv 0; Inst_pc inst ]
              end)
            (insts b))
        (blocks p))
    (procs api);
  add_call_program api Program_after "SysReport" []

let analysis =
  {|
long __sys_counts[64];
long __sys_fails;
long __sys_total;

void SysBefore(long num, long pc) {
  __sys_total++;
  if (num >= 0 && num < 64) __sys_counts[num]++;
}

void SysAfter(long ret, long pc) {
  if (ret < 0) __sys_fails++;
}

void SysReport(void) {
  void *f = fopen("syscall.out", "w");
  long i;
  fprintf(f, "system calls: %d (failed: %d)\n", __sys_total, __sys_fails);
  for (i = 0; i < 64; i++)
    if (__sys_counts[i])
      fprintf(f, "  call %d\t%d\n", i, __sys_counts[i]);
  fclose(f);
}
|}

let tool =
  {
    Tool.name = "syscall";
    description = "system call summary tool";
    points = "before/after each system call";
    nargs = 2;
    paper_ratio = 1.01;
    paper_avg_instr_secs = 6.03;
    instrument;
    analysis;
  }
