(** The eleven tools of the paper's evaluation (Figures 5 and 6). *)

val all : Tool.t list
(** In the paper's order: branch, cache, dyninst, gprof, inline, io,
    malloc, pipe, prof, syscall, unalign. *)

val find : string -> Tool.t option
val names : string list
