lib/tools/dyninst_tool.ml: Atom List Tool
