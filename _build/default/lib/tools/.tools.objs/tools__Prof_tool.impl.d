lib/tools/prof_tool.ml: Atom List Tool
