lib/tools/registry.ml: Branch_tool Cache_tool Dyninst_tool Gprof_tool Inline_tool Io_tool List Malloc_tool Pipe_tool Prof_tool Syscall_tool Tool Unalign_tool
