lib/tools/syscall_tool.ml: Atom List Tool
