lib/tools/unalign_tool.ml: Atom List Tool
