lib/tools/tool.mli: Atom Objfile
