lib/tools/branch_tool.ml: Atom List Tool
