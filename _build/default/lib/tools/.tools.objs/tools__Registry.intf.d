lib/tools/registry.mli: Tool
