lib/tools/pipe_tool.ml: Alpha Array Atom List Tool
