lib/tools/malloc_tool.ml: Atom List Tool
