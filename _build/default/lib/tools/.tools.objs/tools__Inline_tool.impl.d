lib/tools/inline_tool.ml: Atom List Tool
