lib/tools/cache_tool.ml: Atom List Tool
