lib/tools/io_tool.ml: Atom List Tool
