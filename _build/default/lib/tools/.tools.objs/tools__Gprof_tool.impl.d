lib/tools/gprof_tool.ml: Atom List Tool
