lib/tools/tool.ml: Atom
