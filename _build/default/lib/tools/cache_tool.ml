(* cache: model a direct-mapped 8 KB data cache with 32-byte lines. *)

let instrument api =
  let open Atom.Api in
  add_call_proto api "CacheInit()";
  add_call_proto api "Reference(VALUE)";
  add_call_proto api "CacheReport()";
  List.iter
    (fun p ->
      List.iter
        (fun b ->
          List.iter
            (fun inst ->
              if is_inst_type inst Inst_memory then
                add_call_inst api inst Before "Reference" [ Eff_addr_value ])
            (insts b))
        (blocks p))
    (procs api);
  add_call_program api Program_before "CacheInit" [];
  add_call_program api Program_after "CacheReport" []

let analysis =
  {|
/* 8 KB direct-mapped, 32-byte lines: 256 sets */
long __c_tags[256];
long __c_refs;
long __c_misses;

void CacheInit(void) {
  long i;
  for (i = 0; i < 256; i++) __c_tags[i] = -1;
}

void Reference(long addr) {
  long line = (addr >> 5) & 255;
  long tag = addr >> 13;
  __c_refs++;
  if (__c_tags[line] != tag) {
    __c_misses++;
    __c_tags[line] = tag;
  }
}

void CacheReport(void) {
  void *f = fopen("cache.out", "w");
  fprintf(f, "references:        %d\n", __c_refs);
  fprintf(f, "misses:            %d\n", __c_misses);
  if (__c_refs > 0)
    fprintf(f, "miss rate (x1000): %d\n", __c_misses * 1000 / __c_refs);
  fclose(f);
}
|}

let tool =
  {
    Tool.name = "cache";
    description = "model direct mapped 8k byte cache";
    points = "each memory reference";
    nargs = 1;
    paper_ratio = 11.84;
    paper_avg_instr_secs = 6.03;
    instrument;
    analysis;
  }
