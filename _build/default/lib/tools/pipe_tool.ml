(* pipe: pipeline stall tool.  The dual-issue schedule of every basic
   block is computed statically at instrumentation time (which is why
   this is by far the slowest tool to apply — paper Figure 5); the
   analysis routines just accumulate the per-block cycle counts. *)

let instrument api =
  let open Atom.Api in
  add_call_proto api "PipeBlock(int, int)";
  add_call_proto api "PipeReport()";
  List.iter
    (fun p ->
      List.iter
        (fun b ->
          let insns = Array.of_list (List.map inst_insn (insts b)) in
          (* both possible fetch alignments of the block's first word are
             scheduled; the conservative (worse) one is charged, the way
             a static tool must when block placement can change *)
          let c0 = Alpha.Cost.schedule ~base_align:0 insns in
          let c1 = Alpha.Cost.schedule ~base_align:1 insns in
          let cycles = max c0 c1 in
          add_call_block api b Before "PipeBlock"
            [ Int cycles; Int (Array.length insns) ])
        (blocks p))
    (procs api);
  add_call_program api Program_after "PipeReport" []

let analysis =
  {|
long __pipe_cycles;
long __pipe_insns;

void PipeBlock(long cycles, long ninsts) {
  __pipe_cycles += cycles;
  __pipe_insns += ninsts;
}

void PipeReport(void) {
  void *f = fopen("pipe.out", "w");
  long ideal = (__pipe_insns + 1) / 2;
  fprintf(f, "instructions:        %d\n", __pipe_insns);
  fprintf(f, "scheduled cycles:    %d\n", __pipe_cycles);
  fprintf(f, "dual-issue ideal:    %d\n", ideal);
  fprintf(f, "stall cycles:        %d\n", __pipe_cycles - ideal);
  if (__pipe_insns > 0)
    fprintf(f, "cpi (x100):          %d\n", __pipe_cycles * 100 / __pipe_insns);
  fclose(f);
}
|}

let tool =
  {
    Tool.name = "pipe";
    description = "pipeline stall tool";
    points = "each basic block";
    nargs = 2;
    paper_ratio = 1.80;
    paper_avg_instr_secs = 12.87;
    instrument;
    analysis;
  }
