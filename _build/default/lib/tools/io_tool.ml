(* io: input/output summary — wrap the read and write funnels. *)

let instrument api =
  let open Atom.Api in
  add_call_proto api "IoBefore(int, REGV, REGV, REGV)";
  add_call_proto api "IoAfter(int, REGV)";
  add_call_proto api "IoReport()";
  let hook name kind =
    match List.find_opt (fun p -> proc_name p = name) (procs api) with
    | None -> ()
    | Some p ->
        add_call_proc api p Before "IoBefore"
          [ Int kind; Regv 16; Regv 17; Regv 18 ];
        (* at every return: the result is in $v0 *)
        (try add_call_proc api p After "IoAfter" [ Int kind; Regv 0 ]
         with Atom.Api.Error _ -> ())
  in
  hook "__sys_write" 1;
  hook "__sys_read" 0;
  add_call_program api Program_after "IoReport" []

let analysis =
  {|
long __io_calls[2];
long __io_req[2];
long __io_done[2];

void IoBefore(long kind, long fd, long buf, long len) {
  __io_calls[kind]++;
  __io_req[kind] += len;
}

void IoAfter(long kind, long ret) {
  if (ret > 0) __io_done[kind] += ret;
}

void IoReport(void) {
  void *f = fopen("io.out", "w");
  fprintf(f, "reads:  %d calls, %d bytes requested, %d transferred\n",
          __io_calls[0], __io_req[0], __io_done[0]);
  fprintf(f, "writes: %d calls, %d bytes requested, %d transferred\n",
          __io_calls[1], __io_req[1], __io_done[1]);
  fclose(f);
}
|}

let tool =
  {
    Tool.name = "io";
    description = "input/output summary tool";
    points = "before/after write procedure";
    nargs = 4;
    paper_ratio = 1.01;
    paper_avg_instr_secs = 6.08;
    instrument;
    analysis;
  }
