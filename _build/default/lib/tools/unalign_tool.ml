(* unalign: count memory accesses whose effective address is not a
   multiple of the access size.  (We instrument every multi-byte memory
   reference; the paper's tool piggybacked on basic-block instrumentation
   and is cheaper — see EXPERIMENTS.md.) *)

let instrument api =
  let open Atom.Api in
  add_call_proto api "UnRef(VALUE, int, long)";
  add_call_proto api "UnReport()";
  List.iter
    (fun p ->
      List.iter
        (fun b ->
          List.iter
            (fun inst ->
              let size = inst_access_bytes inst in
              if size > 1 then
                add_call_inst api inst Before "UnRef"
                  [ Eff_addr_value; Int size; Inst_pc inst ])
            (insts b))
        (blocks p))
    (procs api);
  add_call_program api Program_after "UnReport" []

let analysis =
  {|
long __un_total;
long __un_bad;

void UnRef(long addr, long size, long pc) {
  __un_total++;
  if (addr & (size - 1)) __un_bad++;
}

void UnReport(void) {
  void *f = fopen("unalign.out", "w");
  fprintf(f, "multi-byte accesses: %d\n", __un_total);
  fprintf(f, "unaligned:           %d\n", __un_bad);
  fclose(f);
}
|}

let tool =
  {
    Tool.name = "unalign";
    description = "unalign access tool";
    points = "each memory reference";
    nargs = 3;
    paper_ratio = 2.93;
    paper_avg_instr_secs = 6.78;
    instrument;
    analysis;
  }
