(* inline: find heavily executed direct call sites — inlining candidates. *)

let instrument api =
  let open Atom.Api in
  add_call_proto api "InInit(int)";
  add_call_proto api "InSite(int)";
  add_call_proto api "InName(int, char *)";
  add_call_proto api "InReport()";
  let site = ref 0 in
  List.iter
    (fun p ->
      List.iter
        (fun b ->
          List.iter
            (fun inst ->
              if is_inst_type inst Inst_call then begin
                match call_target api inst with
                | Some callee ->
                    add_call_inst api inst Before "InSite" [ Int !site ];
                    add_call_program api Program_after "InName"
                      [ Int !site; Str (proc_name p ^ " -> " ^ callee) ];
                    incr site
                | None -> ()
              end)
            (insts b))
        (blocks p))
    (procs api);
  add_call_program api Program_before "InInit" [ Int !site ];
  add_call_program api Program_after "InReport" []

let analysis =
  {|
long *__in_counts;
long __in_n;
void *__in_file;

void InInit(long n) {
  __in_n = n;
  __in_counts = (long *) calloc(n + 1, sizeof(long));
}

void InSite(long id) { __in_counts[id]++; }

void InName(long id, char *pair) {
  if (!__in_file) {
    __in_file = fopen("inline.out", "w");
    fprintf(__in_file, "call site\texecutions\n");
  }
  if (__in_counts[id] >= 16)
    fprintf(__in_file, "%s\t%d\n", pair, __in_counts[id]);
}

void InReport(void) {
  if (!__in_file) __in_file = fopen("inline.out", "w");
  fclose(__in_file);
}
|}

let tool =
  {
    Tool.name = "inline";
    description = "finds potential inlining call sites";
    points = "each call site";
    nargs = 1;
    paper_ratio = 1.03;
    paper_avg_instr_secs = 7.33;
    instrument;
    analysis;
  }
