(* malloc: histogram of dynamic memory allocation sizes. *)

let instrument api =
  let open Atom.Api in
  add_call_proto api "MalSize(REGV)";
  add_call_proto api "MalReport()";
  (match List.find_opt (fun p -> proc_name p = "malloc") (procs api) with
  | Some p -> add_call_proc api p Before "MalSize" [ Regv 16 ]
  | None -> ());
  add_call_program api Program_after "MalReport" []

let analysis =
  {|
long __mal_hist[48];
long __mal_calls;
long __mal_bytes;

void MalSize(long size) {
  long b = 0, s = size;
  __mal_calls++;
  __mal_bytes += size;
  while (s > 1 && b < 47) { s = s >> 1; b++; }
  __mal_hist[b]++;
}

void MalReport(void) {
  void *f = fopen("malloc.out", "w");
  long i;
  fprintf(f, "malloc calls: %d\n", __mal_calls);
  fprintf(f, "bytes requested: %d\n", __mal_bytes);
  fprintf(f, "size histogram (log2 buckets):\n");
  for (i = 0; i < 48; i++)
    if (__mal_hist[i])
      fprintf(f, "  2^%d\t%d\n", i, __mal_hist[i]);
  fclose(f);
}
|}

let tool =
  {
    Tool.name = "malloc";
    description = "histogram of dynamic memory";
    points = "before/after malloc procedure";
    nargs = 1;
    paper_ratio = 1.02;
    paper_avg_instr_secs = 4.90;
    instrument;
    analysis;
  }
