type t = { a_name : string; a_members : Unit_file.t list }

let magic = "AARC1\n"

let create a_name a_members = { a_name; a_members }

let members_defining a name =
  List.filter
    (fun u ->
      List.exists
        (fun s ->
          s.Types.s_name = name
          && s.Types.s_binding = Types.Global
          && s.Types.s_def <> Types.Undefined)
        u.Unit_file.u_symbols)
    a.a_members

let to_string a =
  let w = Wire.writer () in
  Wire.put_raw w magic;
  Wire.put_str w a.a_name;
  Wire.put_list w (fun u -> Wire.put_str w (Unit_file.to_string u)) a.a_members;
  Wire.contents w

let of_string s =
  let rd = Wire.reader s in
  Wire.expect_magic rd magic;
  let a_name = Wire.get_str rd in
  let a_members = Wire.get_list rd (fun rd -> Unit_file.of_string (Wire.get_str rd)) in
  { a_name; a_members }

let save path a =
  let oc = open_out_bin path in
  output_string oc (to_string a);
  close_out oc

let load path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  of_string s
