(** Common vocabulary of the object-module format: sections, symbols and
    relocations. *)

type sec_id = Text | Rdata | Data | Bss

val sec_name : sec_id -> string
val sec_of_name : string -> sec_id option
val all_sections : sec_id list

type reloc_kind =
  | R_br21
      (** 21-bit word displacement in the low bits of a branch instruction;
          target is [symbol + addend], PC-relative. *)
  | R_hi16
      (** High half of a 32-bit absolute address in the displacement field
          of an [ldah]; computed as [(addr + 0x8000) lsr 16] so that the
          paired sign-extending [lda] reconstructs the address. *)
  | R_lo16  (** Low half, in the displacement field of an [lda]/load/store. *)
  | R_quad64  (** 8 absolute bytes in a data section. *)
  | R_long32  (** 4 absolute bytes in a data section. *)

type reloc = {
  r_offset : int;  (** byte offset within the section *)
  r_kind : reloc_kind;
  r_symbol : string;
  r_addend : int;
}

type binding = Local | Global

type sym_type = Func | Object | Notype

type sym_def =
  | Defined of sec_id * int  (** section and byte offset within it *)
  | Undefined

type symbol = {
  s_name : string;
  s_binding : binding;
  s_def : sym_def;
  s_type : sym_type;
  s_size : int;  (** 0 when unknown *)
}

val reloc_kind_name : reloc_kind -> string
val pp_symbol : Format.formatter -> symbol -> unit
val pp_reloc : Format.formatter -> reloc -> unit

val put_reloc : Wire.writer -> reloc -> unit
val get_reloc : Wire.reader -> reloc
val put_symbol : Wire.writer -> symbol -> unit
val get_symbol : Wire.reader -> symbol
