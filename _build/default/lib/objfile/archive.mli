(** Static libraries: a named bag of object modules.  The linker pulls a
    member only when it defines a still-undefined symbol, like [ar]
    archives under classic Unix linkers. *)

type t = { a_name : string; a_members : Unit_file.t list }

val create : string -> Unit_file.t list -> t

val members_defining : t -> string -> Unit_file.t list
(** Members that define the given global symbol. *)

val to_string : t -> string
val of_string : string -> t
val save : string -> t -> unit
val load : string -> t
val magic : string
