type sec_id = Text | Rdata | Data | Bss

let sec_name = function
  | Text -> ".text"
  | Rdata -> ".rdata"
  | Data -> ".data"
  | Bss -> ".bss"

let sec_of_name = function
  | ".text" -> Some Text
  | ".rdata" -> Some Rdata
  | ".data" -> Some Data
  | ".bss" -> Some Bss
  | _ -> None

let all_sections = [ Text; Rdata; Data; Bss ]

type reloc_kind = R_br21 | R_hi16 | R_lo16 | R_quad64 | R_long32

type reloc = {
  r_offset : int;
  r_kind : reloc_kind;
  r_symbol : string;
  r_addend : int;
}

type binding = Local | Global
type sym_type = Func | Object | Notype
type sym_def = Defined of sec_id * int | Undefined

type symbol = {
  s_name : string;
  s_binding : binding;
  s_def : sym_def;
  s_type : sym_type;
  s_size : int;
}

let reloc_kind_name = function
  | R_br21 -> "BR21"
  | R_hi16 -> "HI16"
  | R_lo16 -> "LO16"
  | R_quad64 -> "QUAD64"
  | R_long32 -> "LONG32"

let pp_symbol ppf s =
  let where =
    match s.s_def with
    | Defined (sec, off) -> Printf.sprintf "%s+%#x" (sec_name sec) off
    | Undefined -> "undef"
  in
  Format.fprintf ppf "%s %s (%s%s)" s.s_name where
    (match s.s_binding with Local -> "local" | Global -> "global")
    (match s.s_type with Func -> ",func" | Object -> ",object" | Notype -> "")

let pp_reloc ppf r =
  Format.fprintf ppf "%#x: %s %s%+d" r.r_offset (reloc_kind_name r.r_kind)
    r.r_symbol r.r_addend

let reloc_kind_code = function
  | R_br21 -> 0
  | R_hi16 -> 1
  | R_lo16 -> 2
  | R_quad64 -> 3
  | R_long32 -> 4

let reloc_kind_of_code = function
  | 0 -> R_br21
  | 1 -> R_hi16
  | 2 -> R_lo16
  | 3 -> R_quad64
  | 4 -> R_long32
  | n -> raise (Wire.Corrupt (Printf.sprintf "bad reloc kind %d" n))

let sec_code = function Text -> 0 | Rdata -> 1 | Data -> 2 | Bss -> 3

let sec_of_code = function
  | 0 -> Text
  | 1 -> Rdata
  | 2 -> Data
  | 3 -> Bss
  | n -> raise (Wire.Corrupt (Printf.sprintf "bad section code %d" n))

let put_reloc w r =
  Wire.put_i64 w r.r_offset;
  Wire.put_u8 w (reloc_kind_code r.r_kind);
  Wire.put_str w r.r_symbol;
  Wire.put_i64 w r.r_addend

let get_reloc rd =
  let r_offset = Wire.get_i64 rd in
  let r_kind = reloc_kind_of_code (Wire.get_u8 rd) in
  let r_symbol = Wire.get_str rd in
  let r_addend = Wire.get_i64 rd in
  { r_offset; r_kind; r_symbol; r_addend }

let put_symbol w s =
  Wire.put_str w s.s_name;
  Wire.put_u8 w (match s.s_binding with Local -> 0 | Global -> 1);
  Wire.put_u8 w (match s.s_type with Func -> 0 | Object -> 1 | Notype -> 2);
  Wire.put_i64 w s.s_size;
  match s.s_def with
  | Undefined -> Wire.put_u8 w 0
  | Defined (sec, off) ->
      Wire.put_u8 w 1;
      Wire.put_u8 w (sec_code sec);
      Wire.put_i64 w off

let get_symbol rd =
  let s_name = Wire.get_str rd in
  let s_binding = if Wire.get_u8 rd = 0 then Local else Global in
  let s_type =
    match Wire.get_u8 rd with
    | 0 -> Func
    | 1 -> Object
    | _ -> Notype
  in
  let s_size = Wire.get_i64 rd in
  let s_def =
    match Wire.get_u8 rd with
    | 0 -> Undefined
    | _ ->
        let sec = sec_of_code (Wire.get_u8 rd) in
        let off = Wire.get_i64 rd in
        Defined (sec, off)
  in
  { s_name; s_binding; s_def; s_type; s_size }
