(** Little binary reader/writer used by the object, archive and executable
    file formats.  All integers are little-endian; strings and byte blobs
    are length-prefixed. *)

type writer

val writer : unit -> writer
val put_u8 : writer -> int -> unit
val put_u32 : writer -> int -> unit
val put_i64 : writer -> int -> unit
val put_str : writer -> string -> unit

(** [put_raw] appends raw bytes with no length prefix (magic headers). *)
val put_raw : writer -> string -> unit
val put_bytes : writer -> bytes -> unit
val contents : writer -> string

type reader

val reader : string -> reader
val get_u8 : reader -> int
val get_u32 : reader -> int
val get_i64 : reader -> int
val get_str : reader -> string
val get_bytes : reader -> bytes
val at_end : reader -> bool

exception Corrupt of string
(** Raised on truncated or malformed input. *)

val expect_magic : reader -> string -> unit
val put_list : writer -> ('a -> unit) -> 'a list -> unit
val get_list : reader -> (reader -> 'a) -> 'a list
