type t = {
  u_name : string;
  u_text : bytes;
  u_rdata : bytes;
  u_data : bytes;
  u_bss_size : int;
  u_relocs : (Types.sec_id * Types.reloc) list;
  u_symbols : Types.symbol list;
}

let magic = "AOBJ1\n"

let empty name =
  {
    u_name = name;
    u_text = Bytes.empty;
    u_rdata = Bytes.empty;
    u_data = Bytes.empty;
    u_bss_size = 0;
    u_relocs = [];
    u_symbols = [];
  }

let section_bytes u = function
  | Types.Text -> u.u_text
  | Types.Rdata -> u.u_rdata
  | Types.Data -> u.u_data
  | Types.Bss -> invalid_arg "Unit_file.section_bytes: .bss has no contents"

let section_size u = function
  | Types.Bss -> u.u_bss_size
  | sec -> Bytes.length (section_bytes u sec)

let find_symbol u name =
  List.find_opt (fun s -> s.Types.s_name = name) u.u_symbols

let defined_globals u =
  List.filter
    (fun s -> s.Types.s_binding = Types.Global && s.Types.s_def <> Types.Undefined)
    u.u_symbols

let undefined_symbols u =
  List.filter_map
    (fun s -> if s.Types.s_def = Types.Undefined then Some s.Types.s_name else None)
    u.u_symbols

let write w u =
  Wire.put_str w u.u_name;
  Wire.put_bytes w u.u_text;
  Wire.put_bytes w u.u_rdata;
  Wire.put_bytes w u.u_data;
  Wire.put_i64 w u.u_bss_size;
  Wire.put_list w
    (fun (sec, r) ->
      Wire.put_u8 w
        (match sec with Types.Text -> 0 | Types.Rdata -> 1 | Types.Data -> 2 | Types.Bss -> 3);
      Types.put_reloc w r)
    u.u_relocs;
  Wire.put_list w (Types.put_symbol w) u.u_symbols

let read rd =
  let u_name = Wire.get_str rd in
  let u_text = Wire.get_bytes rd in
  let u_rdata = Wire.get_bytes rd in
  let u_data = Wire.get_bytes rd in
  let u_bss_size = Wire.get_i64 rd in
  let u_relocs =
    Wire.get_list rd (fun rd ->
        let sec =
          match Wire.get_u8 rd with
          | 0 -> Types.Text
          | 1 -> Types.Rdata
          | 2 -> Types.Data
          | 3 -> Types.Bss
          | n -> raise (Wire.Corrupt (Printf.sprintf "bad section tag %d" n))
        in
        (sec, Types.get_reloc rd))
  in
  let u_symbols = Wire.get_list rd Types.get_symbol in
  { u_name; u_text; u_rdata; u_data; u_bss_size; u_relocs; u_symbols }

let to_string u =
  let w = Wire.writer () in
  Wire.put_raw w magic;
  write w u;
  Wire.contents w

let of_string s =
  let rd = Wire.reader s in
  Wire.expect_magic rd magic;
  read rd

let save path u =
  let oc = open_out_bin path in
  output_string oc (to_string u);
  close_out oc

let load path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  of_string s
