(** Relocatable object modules.

    A unit carries four sections ([.text], [.rdata], [.data] and the sizes
    only of [.bss]), per-section relocation lists and a symbol table.  The
    on-disk form starts with the magic ["AOBJ1\n"]. *)

type t = {
  u_name : string;  (** module name, used in diagnostics *)
  u_text : bytes;
  u_rdata : bytes;
  u_data : bytes;
  u_bss_size : int;
  u_relocs : (Types.sec_id * Types.reloc) list;
      (** relocations, tagged by the section they patch *)
  u_symbols : Types.symbol list;
}

val empty : string -> t

val section_bytes : t -> Types.sec_id -> bytes
(** @raise Invalid_argument for [Bss], which has no contents. *)

val section_size : t -> Types.sec_id -> int

val find_symbol : t -> string -> Types.symbol option

val defined_globals : t -> Types.symbol list
val undefined_symbols : t -> string list

val to_string : t -> string
(** Serialise to the on-disk format. *)

val of_string : string -> t
(** @raise Wire.Corrupt on malformed input. *)

val save : string -> t -> unit
val load : string -> t

val magic : string
