lib/objfile/exe.ml: List Types Wire
