lib/objfile/types.ml: Format Printf Wire
