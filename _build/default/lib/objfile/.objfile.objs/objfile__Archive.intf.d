lib/objfile/archive.mli: Unit_file
