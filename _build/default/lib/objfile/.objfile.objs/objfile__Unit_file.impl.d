lib/objfile/unit_file.ml: Bytes List Printf Types Wire
