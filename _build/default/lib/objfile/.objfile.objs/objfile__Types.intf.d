lib/objfile/types.mli: Format Wire
