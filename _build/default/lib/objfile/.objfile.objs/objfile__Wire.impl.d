lib/objfile/wire.ml: Buffer Bytes Char Int64 List Printf String
