lib/objfile/unit_file.mli: Types
