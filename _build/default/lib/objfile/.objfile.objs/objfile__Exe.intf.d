lib/objfile/exe.mli: Types
