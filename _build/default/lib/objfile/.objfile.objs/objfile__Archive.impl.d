lib/objfile/archive.ml: List Types Unit_file Wire
