lib/objfile/wire.mli:
