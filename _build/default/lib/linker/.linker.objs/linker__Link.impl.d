lib/linker/link.ml: Alpha Archive Array Bytes Char Exe Hashtbl Int64 List Objfile Printf Types Unit_file
