lib/linker/link.mli: Objfile
