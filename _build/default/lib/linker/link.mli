(** The standard linker.

    Combines object modules and archives into an executable: archive
    members are pulled only when they satisfy an undefined symbol,
    sections are concatenated per kind, and relocations are applied
    against the final layout.

    The lower-level staging functions ([select_units], [layout], [emit])
    are exposed because ATOM reuses them: the analysis module is linked by
    ATOM itself at bases chosen to sit in the gap between the instrumented
    program's text and its (unmoved) data segment. *)

exception Error of string

type input = Unit of Objfile.Unit_file.t | Lib of Objfile.Archive.t

val select_units : input list -> Objfile.Unit_file.t list
(** Explicit units plus the archive members needed to close the set of
    undefined symbols, in link order. *)

type placement = {
  pl_units : (Objfile.Unit_file.t * int array) list;
      (** per unit, the offset of each of its four sections within the
          combined section ([Text;Rdata;Data;Bss] indexed 0..3) *)
  pl_sizes : int array;  (** combined size of each section kind *)
}

val layout : Objfile.Unit_file.t list -> placement

type bases = {
  b_text : int;
  b_rdata : int;
  b_data : int;
  b_bss : int;
}

type image = {
  i_text : bytes;
  i_rdata : bytes;
  i_data : bytes;
  i_bss_size : int;
  i_globals : (string * Objfile.Exe.sym) list;
      (** resolved global symbols, plus every [Func]-typed symbol *)
  i_code_refs : Objfile.Exe.code_ref list;
      (** fields that encode absolute text addresses (see {!Objfile.Exe}) *)
}

val emit : ?symbol_overrides:(string * int) list -> placement -> bases -> image
(** Apply all relocations and produce the section images.

    [symbol_overrides] forces the named global symbols to resolve to the
    given absolute addresses instead of their local definitions — ATOM
    uses this to alias the analysis module's [__curbrk] to the
    application's copy (the paper's linked-[sbrk] heap mode).
    @raise Error on undefined or multiply-defined symbols. *)

val bases_for : placement -> text:int -> rdata:int -> data:int -> bases
(** Compute section bases with [.bss] packed directly after [.data]
    (8-byte aligned).  [text], [rdata] and [data] are taken as given. *)

val link :
  ?text_base:int ->
  ?rdata_base:int ->
  ?data_base:int ->
  ?entry:string ->
  input list ->
  Objfile.Exe.t
(** Produce a complete executable.  [entry] defaults to ["__start"].
    Defaults: text at {!Objfile.Exe.text_base}, [.rdata] at
    [0x1380_0000], data at {!Objfile.Exe.data_base}. *)

val rdata_base : int
