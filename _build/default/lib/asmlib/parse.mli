(** Parser for the assembly source language.

    The syntax follows classic Unix [as] for Alpha: one statement per line,
    [#] comments, [label:] definitions, dot-directives, and instructions
    with comma-separated operands.  Registers are written with a [$]
    prefix: [$0]..[$31], [$v0], [$sp], [$f0]..[$f31], ... *)

exception Error of int * string
(** Line number and message. *)

val program : string -> Src.stmt list
(** Parse a whole source file. *)

val line : int -> string -> Src.stmt list
(** Parse one line (which may hold several label definitions and at most
    one instruction or directive). *)
