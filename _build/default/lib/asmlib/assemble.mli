(** Two-pass assembler: statements to a relocatable object module.

    Pass one lays out every section (macro expansions have layout-independent
    sizes, so label offsets are final after a single sweep); pass two patches
    branch displacements to in-module labels and emits relocations for
    everything the linker must finish:

    - [R_br21] for branches to symbols not defined in the module;
    - [R_hi16]/[R_lo16] pairs for absolute addresses built with
      [ldah]/[lda] (the [lda r, sym] macro and friends);
    - [R_quad64]/[R_long32] for addresses stored in data.

    Macros (beyond the architectural mnemonics of {!Alpha.Insn}):
    [nop], [mov], [clr], [not], [negq], [sextl],
    [ldiq r, imm] (materialise any 64-bit constant, via the literal pool
    when it does not fit 32 bits), [ldit f, fimm],
    [lda r, sym] (address of a symbol, two instructions),
    [ldq/stq/... r, sym] (global load/store through [$at]),
    [fmov], [fneg], [fclr], [br/bsr label], [ret] with no operands. *)

exception Error of int * string

val unit_of_stmts : name:string -> Src.stmt list -> Objfile.Unit_file.t

val assemble : name:string -> string -> Objfile.Unit_file.t
(** Parse and assemble a complete source file. *)
