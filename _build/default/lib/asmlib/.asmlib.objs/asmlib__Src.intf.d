lib/asmlib/src.mli: Alpha Buffer Format Objfile
