lib/asmlib/assemble.ml: Alpha Bytes Char Hashtbl Int64 List Objfile Option Parse Printf Src String Types Unit_file
