lib/asmlib/src.ml: Alpha Buffer Char Format List Objfile Printf String
