lib/asmlib/parse.ml: Alpha Buffer Char List Objfile Printf Src String
