lib/asmlib/parse.mli: Src
