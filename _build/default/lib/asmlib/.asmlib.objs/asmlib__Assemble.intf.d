lib/asmlib/assemble.mli: Objfile Src
