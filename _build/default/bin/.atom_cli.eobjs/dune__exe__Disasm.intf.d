bin/disasm.mli:
