bin/mcc.mli:
