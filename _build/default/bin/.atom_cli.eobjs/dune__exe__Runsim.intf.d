bin/runsim.mli:
