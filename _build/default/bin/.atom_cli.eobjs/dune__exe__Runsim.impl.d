bin/runsim.ml: Arg In_channel List Machine Objfile Printf String
