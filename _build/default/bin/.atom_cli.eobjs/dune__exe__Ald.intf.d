bin/ald.mli:
