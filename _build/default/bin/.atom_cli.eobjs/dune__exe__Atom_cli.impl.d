bin/atom_cli.ml: Arg Atom Filename List Machine Objfile Printf Tools
