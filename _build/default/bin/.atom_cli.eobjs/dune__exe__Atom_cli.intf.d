bin/atom_cli.mli:
