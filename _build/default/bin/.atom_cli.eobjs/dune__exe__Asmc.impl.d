bin/asmc.ml: Arg Asmlib Filename In_channel List Objfile Printf
