bin/disasm.ml: Alpha Arg Bytes Exe Format Hashtbl List Objfile Printf Types Unit_file
