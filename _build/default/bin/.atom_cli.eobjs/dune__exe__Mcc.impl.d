bin/mcc.ml: Arg Filename In_channel Linker List Minic Objfile Printf Rtlib
