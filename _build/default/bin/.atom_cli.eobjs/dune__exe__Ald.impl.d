bin/ald.ml: Arg Linker List Objfile Printf Rtlib
