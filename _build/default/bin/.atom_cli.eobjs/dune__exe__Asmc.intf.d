bin/asmc.mli:
