(* ald: the standard linker driver.

     ald a.o b.o [-lc] [--entry SYM] -o prog.exe

   [-lc] appends the bundled runtime library archive; [--crt0] prepends
   the startup module. *)

let usage = "ald [-o OUT] [--entry SYM] [--crt0] [-lc] objects..."

let () =
  let output = ref "a.exe" in
  let entry = ref "__start" in
  let with_libc = ref false in
  let with_crt0 = ref false in
  let inputs = ref [] in
  Arg.parse
    [
      ("-o", Arg.Set_string output, "output executable");
      ("--entry", Arg.Set_string entry, "entry symbol (default __start)");
      ("-lc", Arg.Set with_libc, "link the bundled runtime library");
      ("--crt0", Arg.Set with_crt0, "prepend the bundled startup module");
    ]
    (fun f -> inputs := f :: !inputs)
    usage;
  try
    let objs =
      List.rev_map (fun f -> Linker.Link.Unit (Objfile.Unit_file.load f)) !inputs
    in
    let pre = if !with_crt0 then [ Linker.Link.Unit (Rtlib.crt0 ()) ] else [] in
    let post = if !with_libc then [ Linker.Link.Lib (Rtlib.libc ()) ] else [] in
    let exe = Linker.Link.link ~entry:!entry (pre @ objs @ post) in
    Objfile.Exe.save !output exe;
    Printf.printf "wrote %s: entry %#x, text %d bytes\n" !output
      exe.Objfile.Exe.x_entry exe.Objfile.Exe.x_text_size
  with
  | Linker.Link.Error m | Sys_error m ->
      prerr_endline m;
      exit 1
  | Objfile.Wire.Corrupt m ->
      Printf.eprintf "corrupt object file: %s\n" m;
      exit 1
