(* asmc: the assembler driver.

     asmc file.s [-o file.o]  *)

let usage = "asmc [-o OUT] file.s"

let () =
  let output = ref "" in
  let inputs = ref [] in
  Arg.parse
    [ ("-o", Arg.Set_string output, "output object file") ]
    (fun f -> inputs := f :: !inputs)
    usage;
  match List.rev !inputs with
  | [ f ] -> (
      try
        let src = In_channel.with_open_bin f In_channel.input_all in
        let u = Asmlib.Assemble.assemble ~name:(Filename.basename f) src in
        let out =
          if !output <> "" then !output else Filename.remove_extension f ^ ".o"
        in
        Objfile.Unit_file.save out u
      with
      | Asmlib.Assemble.Error (ln, m) | Asmlib.Parse.Error (ln, m) ->
          Printf.eprintf "%s:%d: %s\n" f ln m;
          exit 1
      | Sys_error m ->
          prerr_endline m;
          exit 1)
  | _ ->
      prerr_endline usage;
      exit 2
