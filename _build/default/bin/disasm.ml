(* disasm: objdump-style disassembler for executables and object modules.

     disasm prog.exe [--proc NAME]
     disasm -c file.o

   Branch targets are annotated with symbol names where known; procedure
   boundaries come from the symbol table, exactly the view OM rebuilds. *)

let usage = "disasm [--proc NAME] [-c] file"

let print_exe ?only exe =
  let open Objfile in
  let text = Exe.text_bytes exe in
  let base = exe.Exe.x_text_start in
  let sym_at = Hashtbl.create 64 in
  List.iter
    (fun s -> if not (Hashtbl.mem sym_at s.Exe.x_addr) then
        Hashtbl.replace sym_at s.Exe.x_addr s.Exe.x_name)
    exe.Exe.x_symbols;
  let name_of addr =
    match Hashtbl.find_opt sym_at addr with
    | Some n -> Printf.sprintf "%#x <%s>" addr n
    | None -> Printf.sprintf "%#x" addr
  in
  let funcs = Exe.funcs_sorted exe in
  let in_selection addr =
    match only with
    | None -> true
    | Some name -> (
        match List.find_opt (fun s -> s.Exe.x_name = name) funcs with
        | Some s ->
            addr >= s.Exe.x_addr
            && addr < s.Exe.x_addr + max s.Exe.x_size 4
        | None -> false)
  in
  let n = exe.Exe.x_text_size / 4 in
  for i = 0 to n - 1 do
    let pc = base + (4 * i) in
    if in_selection pc then begin
      (match Hashtbl.find_opt sym_at pc with
      | Some name -> Printf.printf "\n%08x <%s>:\n" pc name
      | None -> ());
      let w = Alpha.Code.read_word text (4 * i) in
      let insn = Alpha.Code.decode w in
      let annot =
        match Alpha.Insn.branch_target ~pc insn with
        | Some t -> Printf.sprintf "\t# -> %s" (name_of t)
        | None -> ""
      in
      Printf.printf "  %08x:  %08x  %s%s\n" pc w (Alpha.Insn.to_string insn) annot
    end
  done

let print_unit u =
  let open Objfile in
  Printf.printf "object module %s\n" u.Unit_file.u_name;
  Printf.printf "  .text %d bytes, .rdata %d, .data %d, .bss %d\n"
    (Bytes.length u.Unit_file.u_text)
    (Bytes.length u.Unit_file.u_rdata)
    (Bytes.length u.Unit_file.u_data)
    u.Unit_file.u_bss_size;
  print_endline "symbols:";
  List.iter
    (fun s -> Format.printf "  %a@." Types.pp_symbol s)
    u.Unit_file.u_symbols;
  print_endline "relocations:";
  List.iter
    (fun (sec, r) ->
      Format.printf "  %s %a@." (Types.sec_name sec) Types.pp_reloc r)
    u.Unit_file.u_relocs;
  print_endline "text:";
  let n = Bytes.length u.Unit_file.u_text / 4 in
  for i = 0 to n - 1 do
    let w = Alpha.Code.read_word u.Unit_file.u_text (4 * i) in
    Printf.printf "  %6x:  %08x  %s\n" (4 * i) w
      (Alpha.Insn.to_string (Alpha.Code.decode w))
  done

let () =
  let obj_mode = ref false in
  let only = ref "" in
  let file = ref "" in
  Arg.parse
    [
      ("-c", Arg.Set obj_mode, "input is an object module, not an executable");
      ("--proc", Arg.Set_string only, "disassemble only the named procedure");
    ]
    (fun f -> file := f)
    usage;
  if !file = "" then begin
    prerr_endline usage;
    exit 2
  end;
  try
    if !obj_mode then print_unit (Objfile.Unit_file.load !file)
    else
      print_exe
        ?only:(if !only = "" then None else Some !only)
        (Objfile.Exe.load !file)
  with Sys_error m | Objfile.Wire.Corrupt m ->
    prerr_endline m;
    exit 1
