(* mcc: the Mini-C compiler driver.

     mcc file.c            compile and link -> file.exe
     mcc -c file.c         compile -> file.o (object module)
     mcc -S file.c         emit assembly on stdout
     mcc -o out ...        choose the output path
     mcc --freestanding    do not prepend the library prototypes *)

let usage = "mcc [-c|-S] [-o OUT] [--freestanding] file.c"

let () =
  let emit_asm = ref false in
  let object_only = ref false in
  let freestanding = ref false in
  let output = ref "" in
  let inputs = ref [] in
  Arg.parse
    [
      ("-S", Arg.Set emit_asm, "emit assembly to stdout");
      ("-c", Arg.Set object_only, "produce an object module, do not link");
      ("-o", Arg.Set_string output, "output file");
      ("--freestanding", Arg.Set freestanding, "no runtime-library prototypes");
    ]
    (fun f -> inputs := f :: !inputs)
    usage;
  match List.rev !inputs with
  | [] ->
      prerr_endline usage;
      exit 2
  | files -> (
      try
        let read f = In_channel.with_open_bin f In_channel.input_all in
        let compile f =
          let src = read f in
          if !freestanding then Minic.Driver.compile ~name:(Filename.basename f) src
          else Rtlib.compile_user ~name:(Filename.basename f) src
        in
        if !emit_asm then
          List.iter
            (fun f ->
              let src = read f in
              let src = if !freestanding then src else Rtlib.header ^ "\n" ^ src in
              print_string (Minic.Driver.compile_to_asm src))
            files
        else if !object_only then
          List.iter
            (fun f ->
              let u = compile f in
              let out =
                if !output <> "" then !output
                else Filename.remove_extension f ^ ".o"
              in
              Objfile.Unit_file.save out u)
            files
        else begin
          let units = List.map compile files in
          let exe = Rtlib.link_program units in
          let out = if !output <> "" then !output else "a.exe" in
          Objfile.Exe.save out exe;
          Printf.printf "wrote %s (%d bytes of text)\n" out exe.Objfile.Exe.x_text_size
        end
      with
      | Minic.Driver.Error m | Linker.Link.Error m ->
          prerr_endline m;
          exit 1
      | Sys_error m ->
          prerr_endline m;
          exit 1)
